"""File collection, two-phase parallel analysis, deterministic reports.

The analyzer is summarize-then-check:

* **phase 1 (summarize)** — every file fans out over
  :func:`repro.parallel.fork_map` and reduces to plain-data
  :class:`~repro.lint.callgraph.ModuleFacts`; the parent links the
  project call graph, runs the summary fixpoints and precomputes the
  interprocedural findings (:func:`repro.lint.summaries.link_project`).
* **phase 2 (check)** — files fan out again, each worker receiving the
  finished :class:`~repro.lint.summaries.ProjectIndex` once through the
  pool initializer; the per-module rules run as before, and the IPD/
  STORE002 rules just report their precomputed findings.

Both phases use ordered ``fork_map`` with module-level workers — the
exact fan-out discipline DET005/PAR001 enforce — and phase 2 only ever
*reads* the shipped index, so ``--format json`` output is byte-identical
at every ``--jobs`` count (test-gated by ``tests/test_lint.py``).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..parallel import fork_map
from .baseline import BaselineKey, load_baseline, split_findings
from .config import normalize_path
from .core import Finding, analyze_file
from .summaries import ProjectIndex, extract_module_facts, link_project

__all__ = ["LintReport", "collect_files", "run_lint", "build_index"]


def collect_files(paths: Sequence[str],
                  root: str = ".") -> List[Tuple[str, str]]:
    """``(abs_path, display_path)`` pairs, sorted by display path.

    Directories expand to every ``*.py`` beneath them; files are taken
    as given.  Display paths are root-relative and posix-style so the
    report (and baseline keys) are machine-independent.
    """
    root = os.path.abspath(root)
    out: Dict[str, str] = {}

    def add(abs_path: str) -> None:
        rel = os.path.relpath(abs_path, root)
        out[normalize_path(rel.replace(os.sep, "/"))] = abs_path

    for path in paths:
        abs_path = path if os.path.isabs(path) else os.path.join(root, path)
        if os.path.isdir(abs_path):
            for dirpath, dirnames, filenames in os.walk(abs_path):
                dirnames[:] = sorted(
                    d for d in dirnames
                    if d not in ("__pycache__", ".git"))
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        add(os.path.join(dirpath, name))
        elif os.path.isfile(abs_path):
            add(abs_path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return [(out[display], display) for display in sorted(out)]


def _summarize_task(task: Tuple[str, str]):
    """Phase-1 fork_map worker: one file → its ModuleFacts."""
    abs_path, display_path = task
    with open(abs_path, encoding="utf-8") as fh:
        source = fh.read()
    return extract_module_facts(display_path, source)


#: the ProjectIndex each phase-2 worker receives via the pool
#: initializer (set in-process when ``--jobs 1`` — fork_map runs the
#: initializer inline then)
_PROJECT: Optional[ProjectIndex] = None


def _set_project(index: ProjectIndex) -> None:
    global _PROJECT
    _PROJECT = index


def _analyze_task(task: Tuple[str, str]) -> List[Finding]:
    """Phase-2 fork_map worker: lint one file against the shipped index
    (module-level, hence picklable)."""
    abs_path, display_path = task
    return analyze_file(abs_path, display_path, project=_PROJECT)


@dataclass
class LintReport:
    """The outcome of one lint run over a set of files."""

    files: int
    findings: List[Finding]                       # active (not baselined)
    baselined: List[Tuple[Finding, str]] = field(default_factory=list)
    stale_baseline: List[BaselineKey] = field(default_factory=list)

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "warning"]

    @property
    def exit_code(self) -> int:
        return 1 if self.errors else 0

    # -- rendering ------------------------------------------------------
    def summary(self) -> Dict[str, int]:
        return {
            "files": self.files,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "baselined": len(self.baselined),
            "stale_baseline": len(self.stale_baseline),
        }

    def to_json(self) -> str:
        payload = {
            "findings": [f.to_json() for f in self.findings],
            "baselined": [
                dict(f.to_json(), reason=reason)
                for f, reason in self.baselined
            ],
            "stale_baseline": [
                {"file": file, "rule": rule, "line": line}
                for file, rule, line in self.stale_baseline
            ],
            "summary": self.summary(),
        }
        return json.dumps(payload, indent=2, sort_keys=True) + "\n"

    def to_text(self) -> str:
        lines = [f.render() for f in self.findings]
        for key in self.stale_baseline:
            file, rule, line = key
            lines.append(f"{file}:{line}: stale baseline entry for {rule} "
                         "(finding no longer present — prune it)")
        s = self.summary()
        lines.append(
            f"{s['files']} files: {s['errors']} errors, "
            f"{s['warnings']} warnings, {s['baselined']} baselined, "
            f"{s['stale_baseline']} stale baseline entries"
        )
        return "\n".join(lines) + "\n"


def build_index(tasks: Sequence[Tuple[str, str]],
                jobs: int = 1) -> ProjectIndex:
    """Phase 1 over collected files: summarize in parallel, link in the
    parent.  Exposed for tests and ``benchmarks/bench_lint.py``."""
    facts = fork_map(_summarize_task, list(tasks), workers=jobs)
    return link_project(facts)


def run_lint(
    paths: Sequence[str],
    jobs: int = 1,
    baseline_path: Optional[str] = None,
    root: str = ".",
) -> LintReport:
    """Lint ``paths`` with ``jobs`` workers, honouring a baseline file."""
    tasks = collect_files(paths, root=root)
    index = build_index(tasks, jobs=jobs)
    per_file = fork_map(_analyze_task, tasks, workers=jobs,
                        initializer=_set_project, initargs=(index,))
    findings = sorted(f for file_findings in per_file
                      for f in file_findings)
    baseline = load_baseline(baseline_path) if baseline_path else {}
    active, matched, stale = split_findings(findings, baseline)
    return LintReport(files=len(tasks), findings=active,
                      baselined=matched, stale_baseline=stale)
