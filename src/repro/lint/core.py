"""Rule framework: findings, module context, suppressions, file analysis.

A rule is an :class:`ast.NodeVisitor` subclass over one parsed module.
The framework hands every rule a shared :class:`ModuleContext` — source,
tree, parent links and import resolution — so individual rules stay
small: they pattern-match nodes and call :meth:`Rule.report`.

Suppressions are inline comments::

    risky_call()  # lint: allow(DET003) bench wall-clock column

The reason text after the closing paren is mandatory — an ``allow``
without one does not suppress and is itself reported (``LINT000``), so
every silenced finding is explained at the silencing site.  A
suppression on its own line covers the next line of code.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Suppressions",
    "analyze_source",
    "analyze_file",
    "BAD_SUPPRESSION_RULE",
    "PARSE_ERROR_RULE",
]

#: pseudo-rule ids emitted by the framework itself (not in the registry)
BAD_SUPPRESSION_RULE = "LINT000"
PARSE_ERROR_RULE = "LINT001"


@dataclass(frozen=True, order=True)
class Finding:
    """One lint finding, ordered for deterministic reports."""

    file: str
    line: int
    col: int
    rule: str
    severity: str
    message: str

    def to_json(self) -> Dict[str, object]:
        return {
            "file": self.file,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "severity": self.severity,
            "message": self.message,
        }

    def render(self) -> str:
        return (f"{self.file}:{self.line}:{self.col + 1}: "
                f"{self.rule} {self.severity}: {self.message}")


class ModuleContext:
    """Shared per-module facts every rule can lean on.

    * ``imports`` / ``from_imports`` — local name to dotted-path maps
      (``import numpy as np`` → ``np: numpy``; ``from random import
      Random`` → ``Random: random.Random``).
    * :meth:`qualname` — resolve a ``Name``/``Attribute`` chain to its
      dotted import path, or ``None`` when the base is not an import
      binding (a local, a parameter, ...).
    * :meth:`is_builtin` — a name that is a Python builtin *here*: not
      shadowed by an import, a module-level assignment or def.
    * :meth:`parent` — enclosing AST node (lazily built parent map).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.imports: Dict[str, str] = {}
        self.from_imports: Dict[str, str] = {}
        self._module_names: Set[str] = set()
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.imports[alias.asname] = alias.name
                    else:
                        top = alias.name.split(".")[0]
                        self.imports[top] = top
            elif isinstance(node, ast.ImportFrom):
                module = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.from_imports[local] = f"{module}.{alias.name}"
        for stmt in tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self._module_names.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    for n in ast.walk(target):
                        if isinstance(n, ast.Name):
                            self._module_names.add(n.id)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name):
                self._module_names.add(stmt.target.id)

    # ------------------------------------------------------------------
    def qualname(self, node: ast.AST) -> Optional[str]:
        """Dotted import path of a ``Name``/``Attribute`` chain, if its
        base resolves through this module's imports."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.from_imports.get(node.id) or self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))

    def is_builtin(self, name: str) -> bool:
        return (name not in self.imports and name not in self.from_imports
                and name not in self._module_names)

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        if self._parents is None:
            self._parents = {}
            for outer in ast.walk(self.tree):
                for child in ast.iter_child_nodes(outer):
                    self._parents[child] = outer
        return self._parents.get(node)


class Rule(ast.NodeVisitor):
    """Base class for lint rules.

    Subclasses set ``id``/``summary``/``default_severity`` and override
    ``visit_*`` methods, reporting via :meth:`report`.  One instance is
    created per (rule, module) pair, so per-module state lives on
    ``self``.
    """

    id: str = "RULE000"
    summary: str = ""
    default_severity: str = "error"
    #: the linked ProjectIndex during a two-phase run, else None —
    #: interprocedural rules read their precomputed findings off it
    project = None

    def __init__(self, ctx: ModuleContext) -> None:
        self.ctx = ctx
        self.raw: List[Tuple[int, int, str]] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.raw.append((node.lineno, node.col_offset, message))

    def run(self) -> List[Tuple[int, int, str]]:
        self.visit(self.ctx.tree)
        return self.raw


# ----------------------------------------------------------------------
# suppressions
# ----------------------------------------------------------------------
_ALLOW_RE = re.compile(
    r"#\s*lint:\s*allow\(\s*([A-Za-z]+\d+(?:\s*,\s*[A-Za-z]+\d+)*)\s*\)(.*)$"
)


class Suppressions:
    """Per-line ``# lint: allow(RULE-ID) reason`` map for one module."""

    def __init__(self, source: str) -> None:
        #: line -> set of rule ids allowed there
        self.allowed: Dict[int, Set[str]] = {}
        #: (line, col) of allow comments missing the mandatory reason
        self.missing_reason: List[Tuple[int, int]] = []
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            for tok in tokens:
                if tok.type != tokenize.COMMENT:
                    continue
                match = _ALLOW_RE.search(tok.string)
                if not match:
                    continue
                rules = {r.strip().upper() for r in match.group(1).split(",")}
                reason = match.group(2).strip()
                line, col = tok.start
                if not reason:
                    self.missing_reason.append((line, col))
                    continue
                self.allowed.setdefault(line, set()).update(rules)
                # a standalone comment line covers the next line of code
                prefix = source.splitlines()[line - 1][:col]
                if not prefix.strip():
                    self.allowed.setdefault(line + 1, set()).update(rules)
        except tokenize.TokenError:  # pragma: no cover - parse error path
            pass

    def suppresses(self, line: int, rule: str) -> bool:
        return rule in self.allowed.get(line, ())


# ----------------------------------------------------------------------
# analysis entry points
# ----------------------------------------------------------------------
def analyze_source(
    source: str,
    path: str,
    rules: Optional[Sequence[type]] = None,
    severity_for=None,
    project=None,
) -> List[Finding]:
    """Lint one module given as text.

    ``path`` is the display path (also what per-directory severity
    configuration matches against).  ``rules`` defaults to the full
    registry; ``severity_for(path, rule_id, default)`` defaults to the
    repo configuration in :mod:`repro.lint.config`.  ``project`` is the
    linked :class:`repro.lint.summaries.ProjectIndex` of a two-phase
    run; without one the interprocedural rules stay inert.
    """
    if rules is None:
        from .rules import all_rules
        rules = all_rules()
    if severity_for is None:
        from .config import severity_for
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        return [Finding(path, exc.lineno or 1, (exc.offset or 1) - 1,
                        PARSE_ERROR_RULE, "error",
                        f"syntax error: {exc.msg}")]
    ctx = ModuleContext(path, source, tree)
    suppressions = Suppressions(source)
    findings: List[Finding] = []
    for line, col in suppressions.missing_reason:
        findings.append(Finding(
            path, line, col, BAD_SUPPRESSION_RULE, "error",
            "suppression must carry a reason: "
            "# lint: allow(RULE-ID) <why this is intentional>",
        ))
    for rule_cls in rules:
        severity = severity_for(path, rule_cls.id, rule_cls.default_severity)
        if severity == "off":
            continue
        instance = rule_cls(ctx)
        instance.project = project
        for line, col, message in instance.run():
            if suppressions.suppresses(line, rule_cls.id):
                continue
            findings.append(Finding(path, line, col, rule_cls.id,
                                    severity, message))
    findings.sort()
    return findings


def analyze_file(
    abs_path: str,
    display_path: Optional[str] = None,
    rules: Optional[Sequence[type]] = None,
    project=None,
) -> List[Finding]:
    """Lint one file on disk (see :func:`analyze_source`)."""
    with open(abs_path, encoding="utf-8") as fh:
        source = fh.read()
    return analyze_source(source, display_path or abs_path, rules=rules,
                          project=project)
