"""JSON baseline: gate CI on *regressions*, not the historical backlog.

A baseline file records findings that are known and intentional::

    {
      "version": 1,
      "findings": [
        {"file": "src/repro/x.py", "rule": "DET004", "line": 12,
         "reason": "iteration feeds a set, order provably irrelevant"}
      ]
    }

Every entry must carry a non-empty ``reason`` — a baseline is a list of
justified exceptions, not a mute button; loading rejects entries
without one.  A finding matches an entry on ``(file, rule, line)``.
Entries that no longer match any finding are *stale* and reported so the
file shrinks as violations are fixed.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from .core import Finding

__all__ = ["BaselineError", "load_baseline", "split_findings",
           "render_baseline", "prune_baseline"]

BaselineKey = Tuple[str, str, int]


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing reason, ...)."""


def load_baseline(path: str) -> Dict[BaselineKey, str]:
    """``{(file, rule, line): reason}`` from a baseline file."""
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    entries = payload.get("findings") if isinstance(payload, dict) else None
    if not isinstance(entries, list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    baseline: Dict[BaselineKey, str] = {}
    for i, entry in enumerate(entries):
        try:
            key = (str(entry["file"]), str(entry["rule"]),
                   int(entry["line"]))
            reason = str(entry["reason"]).strip()
        except (TypeError, KeyError) as exc:
            raise BaselineError(
                f"baseline {path} entry {i} needs file/rule/line/reason"
            ) from exc
        if not reason:
            raise BaselineError(
                f"baseline {path} entry {i} ({key[0]}:{key[2]} {key[1]}) "
                "has an empty reason — every baselined finding must say "
                "why it is intentional"
            )
        baseline[key] = reason
    return baseline


def split_findings(
    findings: Sequence[Finding], baseline: Dict[BaselineKey, str]
) -> Tuple[List[Finding], List[Tuple[Finding, str]], List[BaselineKey]]:
    """Partition into (active, baselined-with-reason, stale keys)."""
    active: List[Finding] = []
    matched: List[Tuple[Finding, str]] = []
    seen = set()
    for finding in findings:
        key = (finding.file, finding.rule, finding.line)
        if key in baseline:
            matched.append((finding, baseline[key]))
            seen.add(key)
        else:
            active.append(finding)
    stale = sorted(key for key in baseline if key not in seen)
    return active, matched, stale


def render_baseline(findings: Sequence[Finding], reason: str) -> str:
    """A baseline document covering ``findings``, every entry stamped
    with ``reason`` (callers normally edit per-entry reasons by hand)."""
    entries = [
        {"file": f.file, "rule": f.rule, "line": f.line, "reason": reason}
        for f in sorted(findings)
    ]
    return json.dumps({"version": 1, "findings": entries},
                      indent=2, sort_keys=True) + "\n"


def prune_baseline(path: str, stale: Sequence[BaselineKey]) -> int:
    """Rewrite the baseline at ``path`` without the ``stale`` keys,
    preserving every surviving entry's hand-written reason.  Returns the
    number of entries dropped.  A no-op (0 stale) leaves the file bytes
    untouched."""
    if not stale:
        return 0
    baseline = load_baseline(path)  # validates reasons along the way
    doomed = set(stale)
    survivors = [
        {"file": file, "rule": rule, "line": line,
         "reason": baseline[(file, rule, line)]}
        for file, rule, line in sorted(baseline)
        if (file, rule, line) not in doomed
    ]
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"version": 1, "findings": survivors},
                            indent=2, sort_keys=True) + "\n")
    return len(baseline) - len(survivors)
