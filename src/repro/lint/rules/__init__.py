"""Rule registry: the active rule packs.

``all_rules()`` is the single source of truth for which rules run; the
CLI's ``--list-rules`` and the default path of
:func:`repro.lint.core.analyze_source` both read it.
"""

from __future__ import annotations

from typing import List, Type

from ..core import Rule
from .contracts import (
    BatchCacheResetRule,
    ForkMapClosureRule,
    SharedGraphWriteRule,
    ViewPrivateAccessRule,
)
from .determinism import (
    BuiltinHashRule,
    SetIterationRule,
    UnorderedPoolRule,
    UnseededRandomRule,
    WallClockRule,
)
from .interprocedural import (
    TransitiveEntropyRule,
    TransitiveSharedWriteRule,
    TransitiveViewInternalsRule,
)
from .store import StoreKeyCompletenessRule, StorePayloadPurityRule

__all__ = ["all_rules"]

_REGISTRY: List[Type[Rule]] = [
    UnseededRandomRule,          # DET001
    BuiltinHashRule,             # DET002
    WallClockRule,               # DET003
    SetIterationRule,            # DET004
    UnorderedPoolRule,           # DET005
    ViewPrivateAccessRule,       # ENG001
    BatchCacheResetRule,         # ENG002
    TransitiveEntropyRule,       # IPD001
    TransitiveViewInternalsRule, # IPD002
    TransitiveSharedWriteRule,   # IPD003
    ForkMapClosureRule,          # PAR001
    SharedGraphWriteRule,        # SHM001
    StorePayloadPurityRule,      # STORE001
    StoreKeyCompletenessRule,    # STORE002
]


def all_rules() -> List[Type[Rule]]:
    """The active rules, in stable (id) order."""
    return sorted(_REGISTRY, key=lambda rule: rule.id)
