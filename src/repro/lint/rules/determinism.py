"""DET rules: every byte of output must be a function of declared seeds.

The sweep/census payload contract (byte-identical JSON at any worker
count, under any ``PYTHONHASHSEED``) only holds if randomness, hashing,
clocks and iteration orders are all pinned.  These rules encode the
:mod:`repro.parallel` docstring as checkable patterns:

* **DET001** — module-level / unseeded ``random`` draws in library code.
* **DET002** — builtin ``hash()`` feeding seeds, digests or task keys.
* **DET003** — wall-clock / entropy sources.
* **DET004** — iteration over ``set``/``frozenset`` flowing into
  ordered results without ``sorted(...)``.
* **DET005** — unordered fan-out APIs (``imap_unordered`` & friends).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from ..core import Rule

__all__ = [
    "UnseededRandomRule",
    "BuiltinHashRule",
    "WallClockRule",
    "SetIterationRule",
    "UnorderedPoolRule",
]


class UnseededRandomRule(Rule):
    """DET001: module-level or unseeded randomness.

    ``random.<draw>()`` uses the process-global, process-seeded RNG, and
    ``random.Random()`` with no arguments seeds from OS entropy — both
    make results irreproducible across runs and workers.  Library code
    must thread an explicit ``rng`` or derive one from
    ``repro.parallel.stable_seed``.
    """

    id = "DET001"
    summary = ("module-level/unseeded random draws (thread an rng or "
               "derive a seed via stable_seed)")

    _GLOBAL_DRAWS = {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "seed", "getrandbits", "betavariate",
        "expovariate", "triangular",
    }

    def visit_Call(self, node: ast.Call) -> None:
        qual = self.ctx.qualname(node.func)
        if qual == "random.Random" and not node.args and not node.keywords:
            self.report(node, "unseeded random.Random() draws from OS "
                              "entropy; seed it (e.g. from "
                              "repro.parallel.stable_seed)")
        elif qual is not None and qual.startswith("random."):
            attr = qual.split(".", 1)[1]
            if attr in self._GLOBAL_DRAWS:
                self.report(node, f"random.{attr}() uses the process-"
                                  "global RNG; thread an explicit seeded "
                                  "random.Random instead")
        elif qual is not None and (qual.startswith("numpy.random.")
                                   or qual.startswith("np.random.")):
            self.report(node, "numpy global RNG call; use a seeded "
                              "numpy.random.Generator (or stay off numpy "
                              "randomness)")
        self.generic_visit(node)


class BuiltinHashRule(Rule):
    """DET002: builtin ``hash()`` is salted per process.

    ``hash(str)``/``hash(tuple-of-str)`` changes with ``PYTHONHASHSEED``,
    so any seed, digest, cache key or task key derived from it differs
    between processes — exactly the nondeterminism
    ``repro.parallel.stable_seed``/``stable_digest`` exist to prevent.
    Implementing ``__hash__`` in terms of ``hash()`` is fine (it never
    crosses a process boundary through in-memory dicts/sets alone).
    """

    id = "DET002"
    summary = ("builtin hash() is PYTHONHASHSEED-salted; use "
               "stable_seed/stable_digest for anything reproducible")

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._in_dunder_hash = 0

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        is_hash = node.name == "__hash__"
        self._in_dunder_hash += is_hash
        self.generic_visit(node)
        self._in_dunder_hash -= is_hash

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (isinstance(func, ast.Name) and func.id == "hash"
                and self.ctx.is_builtin("hash")
                and not self._in_dunder_hash):
            self.report(node, "builtin hash() is salted per process "
                              "(PYTHONHASHSEED); derive seeds/digests/"
                              "task keys from repro.parallel.stable_seed "
                              "or stable_digest")
        self.generic_visit(node)


class WallClockRule(Rule):
    """DET003: wall-clock and entropy sources.

    Clock reads and OS entropy make results depend on when/where code
    runs.  The only sanctioned reader is ``benchmarks/harness.py`` (the
    ``timed`` helper), which the severity config exempts.
    """

    id = "DET003"
    summary = ("wall-clock/entropy source; only benchmarks/harness.py "
               "may read the clock")

    _SOURCES = {
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
        "datetime.datetime.now", "datetime.datetime.utcnow",
        "datetime.datetime.today", "datetime.date.today",
        "os.urandom", "os.getrandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow", "secrets.choice",
    }

    def visit_Attribute(self, node: ast.Attribute) -> None:
        qual = self.ctx.qualname(node)
        if qual in self._SOURCES:
            self.report(node, f"{qual} is a wall-clock/entropy source; "
                              "results must be functions of declared "
                              "seeds (benchmarks time via "
                              "benchmarks/harness.timed)")
            return  # do not descend: one report per chain
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # from time import perf_counter; from os import urandom; ...
        if isinstance(node.ctx, ast.Load):
            qual = self.ctx.from_imports.get(node.id)
            if qual in self._SOURCES:
                self.report(node, f"{qual} is a wall-clock/entropy "
                                  "source; results must be functions of "
                                  "declared seeds")


#: consumers for which element order provably cannot matter
_ORDER_FREE_CONSUMERS = {
    "sorted", "set", "frozenset", "sum", "min", "max", "any", "all", "len",
}
#: consumers that freeze the (arbitrary) iteration order into a sequence
_ORDER_SENSITIVE_CONSUMERS = {"list", "tuple", "enumerate"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}
_SET_ANNOTATIONS = {
    "Set", "FrozenSet", "AbstractSet", "MutableSet", "set", "frozenset",
}


class _ScopeSets:
    """Names that provably hold sets within one function/module scope."""

    def __init__(self) -> None:
        self.names: Set[str] = set()
        self.tainted: Set[str] = set()

    def track(self, name: str) -> None:
        if name not in self.tainted:
            self.names.add(name)

    def taint(self, name: str) -> None:
        self.tainted.add(name)
        self.names.discard(name)


class SetIterationRule(Rule):
    """DET004: unordered iteration escaping into ordered results.

    Iterating a ``set`` has no guaranteed order; when the elements flow
    into a list, a generator a caller will sequence, a joined string or
    an accumulator, the result depends on hash-table layout.  Wrap the
    iterable in ``sorted(...)``.  Order-free reductions (``sum``,
    ``min``, membership scans, building another set) are fine.
    """

    id = "DET004"
    summary = ("iteration over a set flows into ordered results; wrap "
               "the iterable in sorted(...)")

    # -- scope handling -------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._scope(node, [])

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        # reached only for nested scopes via _scope's deferred walk
        self._scope(node, self._annotated_set_params(node))

    visit_AsyncFunctionDef = visit_FunctionDef

    @staticmethod
    def _annotated_set_params(node: ast.FunctionDef) -> List[str]:
        params = []
        args = node.args
        for arg in (args.posonlyargs + args.args + args.kwonlyargs):
            ann = arg.annotation
            if ann is None:
                continue
            if isinstance(ann, ast.Subscript):
                ann = ann.value
            base = ann
            while isinstance(base, ast.Attribute):
                base = base.value  # typing.Set -> typing / Set via attr
            name = ann.attr if isinstance(ann, ast.Attribute) else (
                ann.id if isinstance(ann, ast.Name) else None)
            if name in _SET_ANNOTATIONS:
                params.append(arg.arg)
        return params

    def _scope(self, scope_node: ast.AST, set_params: List[str]) -> None:
        sets = _ScopeSets()
        for name in set_params:
            sets.track(name)
        body = (scope_node.body if isinstance(scope_node.body, list)
                else [scope_node.body])
        nested: List[ast.FunctionDef] = []
        # pass 1: collect assignments (order-independent within scope)
        for stmt in self._walk_scope(body, nested):
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    self._note_assignment(target, stmt.value, sets)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                self._note_assignment(stmt.target, stmt.value, sets)
            elif isinstance(stmt, ast.AugAssign):
                if isinstance(stmt.target, ast.Name) and not isinstance(
                        stmt.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
                    sets.taint(stmt.target.id)
            elif isinstance(stmt, ast.For):
                for n in ast.walk(stmt.target):
                    if isinstance(n, ast.Name):
                        sets.taint(n.id)
        # pass 2: find escaping iterations
        for stmt in self._walk_scope(body, []):
            self._check_node(stmt, sets)
        for fn in nested:
            self.visit_FunctionDef(fn)

    @staticmethod
    def _walk_scope(body: List[ast.stmt], nested: List[ast.FunctionDef]):
        """Walk statements/expressions without entering nested defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.append(node)
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    def _note_assignment(self, target: ast.AST, value: ast.AST,
                         sets: _ScopeSets) -> None:
        if not isinstance(target, ast.Name):
            return
        if self._is_set_expr(value, sets):
            sets.track(target.id)
        else:
            sets.taint(target.id)

    def _is_set_expr(self, node: ast.AST, sets: _ScopeSets) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in sets.names
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return (self._is_set_expr(node.left, sets)
                    or self._is_set_expr(node.right, sets))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset") \
                    and self.ctx.is_builtin(func.id):
                return True
            if isinstance(func, ast.Attribute) and func.attr in _SET_METHODS:
                return self._is_set_expr(func.value, sets)
        return False

    # -- firing points --------------------------------------------------
    def _check_node(self, node: ast.AST, sets: _ScopeSets) -> None:
        if isinstance(node, ast.For) and self._is_set_expr(node.iter, sets):
            if self._body_is_order_sensitive(node.body):
                self.report(node.iter, self._msg("for loop"))
        elif isinstance(node, ast.ListComp):
            if self._comp_over_set(node, sets) and not self._consumed_by(
                    node, _ORDER_FREE_CONSUMERS):
                self.report(node, self._msg("list comprehension"))
        elif isinstance(node, ast.GeneratorExp):
            if self._comp_over_set(node, sets) and self._consumed_by(
                    node, _ORDER_SENSITIVE_CONSUMERS, attr="join"):
                self.report(node, self._msg("generator"))
        elif isinstance(node, (ast.List, ast.Tuple)) and isinstance(
                node.ctx, ast.Load):
            # [*s] / (*s,) freeze set order exactly like list(s)/tuple(s)
            starred_set = any(
                isinstance(elt, ast.Starred)
                and self._is_set_expr(elt.value, sets)
                for elt in node.elts)
            if starred_set and not self._consumed_by(
                    node, _ORDER_FREE_CONSUMERS):
                self.report(node, self._msg("starred unpacking"))
        elif isinstance(node, ast.Call):
            func = node.func
            sensitive = (
                isinstance(func, ast.Name)
                and func.id in _ORDER_SENSITIVE_CONSUMERS
                and self.ctx.is_builtin(func.id)
            ) or (isinstance(func, ast.Attribute) and func.attr == "join")
            if sensitive and node.args and self._is_set_expr(
                    node.args[0], sets):
                # sorted(list(s)) / min(tuple(s)): the wrapper's arbitrary
                # order never reaches output — not an escape
                if not self._consumed_by(node, _ORDER_FREE_CONSUMERS):
                    self.report(node, self._msg("conversion"))
            elif sensitive or (
                    isinstance(func, ast.Name) and func.id == "print"
                    and self.ctx.is_builtin("print")):
                # f(*s) splats set order into positional arguments
                for arg in node.args:
                    if isinstance(arg, ast.Starred) and self._is_set_expr(
                            arg.value, sets):
                        self.report(node, self._msg("star-argument"))
                        break

    @staticmethod
    def _msg(kind: str) -> str:
        return (f"{kind} over a set has no deterministic order; wrap the "
                "iterable in sorted(...) before it reaches ordered output")

    def _comp_over_set(self, comp, sets: _ScopeSets) -> bool:
        return self._is_set_expr(comp.generators[0].iter, sets)

    def _consumed_by(self, node: ast.AST, names: Set[str],
                     attr: Optional[str] = None) -> bool:
        parent = self.ctx.parent(node)
        if not isinstance(parent, ast.Call) or node not in parent.args:
            return False
        func = parent.func
        if isinstance(func, ast.Name):
            return func.id in names and self.ctx.is_builtin(func.id)
        if attr is not None and isinstance(func, ast.Attribute):
            return func.attr == attr
        return False

    @staticmethod
    def _body_is_order_sensitive(body: List[ast.stmt]) -> bool:
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.Yield, ast.YieldFrom)):
                    return True
                if isinstance(node, ast.AugAssign):
                    return True
                if isinstance(node, ast.Call) and isinstance(
                        node.func, ast.Attribute) and node.func.attr in (
                        "append", "extend", "insert", "appendleft"):
                    return True
        return False


class UnorderedPoolRule(Rule):
    """DET005: unordered fan-out APIs.

    ``Pool.imap_unordered``/``as_completed`` return results in
    completion order, which varies with scheduling — aggregates built
    from them differ run to run.  ``repro.parallel.fork_map`` (ordered
    ``pool.map``) is the only sanctioned fan-out.
    """

    id = "DET005"
    summary = ("unordered pool API; repro.parallel.fork_map (task-"
               "ordered) is the only sanctioned fan-out")

    _UNORDERED_ATTRS = {"imap_unordered", "map_unordered"}
    _UNORDERED_QUALS = {
        "concurrent.futures.as_completed", "asyncio.as_completed",
    }

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in self._UNORDERED_ATTRS:
            self.report(node, f"{node.attr} yields results in completion "
                              "order; use repro.parallel.fork_map so "
                              "aggregates stay task-ordered")
        elif self.ctx.qualname(node) in self._UNORDERED_QUALS:
            self.report(node, "as_completed yields results in completion "
                              "order; use repro.parallel.fork_map so "
                              "aggregates stay task-ordered")
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Load):
            qual = self.ctx.from_imports.get(node.id)
            if qual in self._UNORDERED_QUALS:
                self.report(node, "as_completed yields results in "
                                  "completion order; use repro.parallel."
                                  "fork_map so aggregates stay task-"
                                  "ordered")
