"""ENG/PAR/SHM rules: engine, fan-out and shared-memory contracts.

These encode ``docs/engine-contract.md`` at the AST level:

* **ENG001** — ``decide``/``decide_batch`` reaching into private view
  state (``view._*``).  The View API is the sealed interface algorithms
  see; touching internals breaks engine interchangeability.
* **ENG002** — ``BatchedAlgorithm`` caches assigned in ``decide_batch``
  (or helpers) but never reset in ``setup``, leaking state across
  executions.
* **PAR001** — lambdas/closures handed to ``fork_map``; workers must be
  module-level functions or fork pickling fails (or silently binds
  stale state).
* **SHM001** — mutation of attached shared-memory graph arrays, or
  un-sealing them (``setflags(write=True)``); attached segments are
  concurrently mapped by sibling workers.
"""

from __future__ import annotations

import ast
from typing import List, Set, Tuple

from ..core import Rule

__all__ = [
    "ViewPrivateAccessRule",
    "BatchCacheResetRule",
    "ForkMapClosureRule",
    "SharedGraphWriteRule",
]

#: parameter names the engine contract reserves for sealed views
_VIEW_PARAMS = {"view", "views"}


class ViewPrivateAccessRule(Rule):
    """ENG001: algorithm code touching private view state."""

    id = "ENG001"
    summary = ("decide/decide_batch must stay inside the View API; "
               "view._* is engine-private state")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        args = node.args
        params = {a.arg for a in (args.posonlyargs + args.args
                                  + args.kwonlyargs)}
        sealed = params & _VIEW_PARAMS
        if sealed:
            for inner in ast.walk(node):
                if not isinstance(inner, ast.Attribute):
                    continue
                base = inner.value
                if (isinstance(base, ast.Name) and base.id in sealed
                        and inner.attr.startswith("_")
                        and not inner.attr.startswith("__")):
                    self.report(inner, f"{base.id}.{inner.attr} is "
                                       "engine-private state; algorithms "
                                       "must use the public View API "
                                       "(ball/label/radius/...)")
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef


_RESET_METHODS = {"__init__", "setup"}


class BatchCacheResetRule(Rule):
    """ENG002: per-execution caches not reset in ``setup``.

    In a class that defines ``decide_batch``, any ``self._x`` assigned
    inside a non-``setup`` method is a per-execution cache (memoised
    traces, batch state, colour tables).  ``setup(graph, n)`` is the
    engine's only reset hook between executions — a cache it does not
    reassign leaks the previous graph's state into the next run.
    """

    id = "ENG002"
    summary = ("BatchedAlgorithm caches assigned outside setup must be "
               "reset in setup (the per-execution reset hook)")

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        methods = [m for m in node.body if isinstance(
            m, (ast.FunctionDef, ast.AsyncFunctionDef))]
        names = {m.name for m in methods}
        if "decide_batch" not in names:
            self.generic_visit(node)
            return
        reset: Set[str] = set()
        for m in methods:
            if m.name in _RESET_METHODS:
                reset |= {attr for attr, _ in self._self_assignments(m)}
        for m in methods:
            if m.name in _RESET_METHODS or (
                    m.name.startswith("__") and m.name.endswith("__")):
                continue
            for attr, site in self._self_assignments(m):
                if attr not in reset:
                    self.report(site, f"self.{attr} is assigned in "
                                      f"{m.name}() but never reset in "
                                      "setup(); per-execution caches "
                                      "leak across executions")
        self.generic_visit(node)

    @staticmethod
    def _self_assignments(
        method: ast.AST,
    ) -> List[Tuple[str, ast.AST]]:
        """``(attr, node)`` for every ``self.attr = ...`` in ``method``."""
        out: List[Tuple[str, ast.AST]] = []
        for inner in ast.walk(method):
            targets: List[ast.expr] = []
            if isinstance(inner, ast.Assign):
                targets = inner.targets
            elif isinstance(inner, (ast.AugAssign, ast.AnnAssign)):
                targets = [inner.target]
            for target in targets:
                nodes = (target.elts if isinstance(
                    target, (ast.Tuple, ast.List)) else [target])
                for t in nodes:
                    if (isinstance(t, ast.Attribute)
                            and isinstance(t.value, ast.Name)
                            and t.value.id == "self"):
                        out.append((t.attr, t))
        return out


class ForkMapClosureRule(Rule):
    """PAR001: only module-level callables survive fork_map pickling."""

    id = "PAR001"
    summary = ("fork_map workers must be module-level functions; "
               "lambdas/closures do not pickle")

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        #: names bound to lambdas or nested defs, per enclosing function
        self._local_callables: List[Set[str]] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        local: Set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                local.add(stmt.name)
            elif isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        local.add(target.id)
        self._local_callables.append(local)
        self.generic_visit(node)
        self._local_callables.pop()

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        is_fork_map = (
            (isinstance(func, ast.Name) and func.id == "fork_map")
            or (isinstance(func, ast.Attribute) and func.attr == "fork_map")
        )
        if is_fork_map:
            candidates: List[ast.expr] = []
            if node.args:
                candidates.append(node.args[0])
            for kw in node.keywords:
                if kw.arg in ("fn", "initializer"):
                    candidates.append(kw.value)
            for cand in candidates:
                self._check_worker(cand)
        self.generic_visit(node)

    def _check_worker(self, node: ast.expr) -> None:
        if isinstance(node, ast.Lambda):
            self.report(node, "lambda passed to fork_map; lambdas do not "
                              "pickle across the fork — define a module-"
                              "level worker function")
        elif isinstance(node, ast.Name):
            for scope in self._local_callables:
                if node.id in scope:
                    self.report(node, f"{node.id} is defined inside a "
                                      "function; fork_map workers must "
                                      "be module-level (closures do not "
                                      "pickle)")
                    return


_ATTACH_CALLS = {"shared_graph", "attach_graph", "from_csr_buffers"}


class SharedGraphWriteRule(Rule):
    """SHM001: attached shared-memory graphs are read-only.

    A graph obtained from :func:`repro.shm.shared_graph` /
    :func:`attach_graph` / :meth:`Graph.from_csr_buffers` aliases a
    segment mapped by every sibling worker; an in-place write races all
    of them.  The rule flags stores into arrays unpacked from such a
    graph's ``adjacency()`` and any ``setflags(write=True)`` /
    ``.flags.writeable = True`` un-sealing (sealing with ``False``, as
    ``frontier._readonly`` does, is the sanctioned direction).
    """

    id = "SHM001"
    summary = ("attached shared-memory graph arrays are read-only; "
               "copy before mutating")

    def __init__(self, ctx) -> None:
        super().__init__(ctx)
        self._shared_graphs: Set[str] = set()
        self._shared_arrays: Set[str] = set()

    @staticmethod
    def _is_attach_call(node: ast.expr) -> bool:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None)
        return name in _ATTACH_CALLS

    @staticmethod
    def _writeable_target(target: ast.expr) -> bool:
        return (isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags")

    def _check_store_target(self, target: ast.expr) -> None:
        if (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id in self._shared_arrays):
            self.report(target, f"store into {target.value.id}[...] — it "
                                "aliases an attached shared-memory "
                                "segment; copy before mutating")

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "setflags":
            for kw in node.keywords:
                if kw.arg == "write" and not (
                        isinstance(kw.value, ast.Constant)
                        and kw.value.value is False):
                    self.report(node, "setflags(write=True) un-seals a "
                                      "shared array; attached segments "
                                      "are mapped by sibling workers — "
                                      "copy instead")
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        # 1) firing: un-sealing and stores into tracked arrays
        for target in node.targets:
            if self._writeable_target(target):
                if not (isinstance(node.value, ast.Constant)
                        and node.value.value is False):
                    self.report(node, ".flags.writeable = True un-seals "
                                      "a shared array; attached segments "
                                      "are mapped by sibling workers")
            self._check_store_target(target)
        # 2) tracking: graphs from attach calls, arrays from adjacency()
        value = node.value
        if self._is_attach_call(value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self._shared_graphs.add(target.id)
        elif (isinstance(value, ast.Call)
              and isinstance(value.func, ast.Attribute)
              and value.func.attr == "adjacency"
              and isinstance(value.func.value, ast.Name)
              and value.func.value.id in self._shared_graphs):
            for target in node.targets:
                elts = (target.elts if isinstance(
                    target, (ast.Tuple, ast.List)) else [target])
                for t in elts:
                    if isinstance(t, ast.Name):
                        self._shared_arrays.add(t.id)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store_target(node.target)
        self.generic_visit(node)
