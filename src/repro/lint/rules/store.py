"""STORE rules: persisted artifacts must be pure functions of their keys.

The content-addressed store (:mod:`repro.store`) only works if a
payload's bytes are fully determined by the values in its key: a warm
run serves stored bytes where a cold run serializes fresh ones, and the
two must compare equal.  Anything environmental baked into a persisted
payload — a wall-clock timestamp, a hostname, a pid — breaks that
byte-identity silently.  ``STORE001`` extends ``DET003``'s intent from
in-process results to *persisted* artifacts.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from ..core import Rule
from .determinism import WallClockRule

__all__ = ["StorePayloadPurityRule", "StoreKeyCompletenessRule"]

#: the writer entry points: the atomic persistence helpers plus
#: ``<...store...>.put(...)`` (a ResultStore write)
_WRITER_NAMES = {"atomic_write_json", "atomic_write_text"}

#: environment identity sources, on top of DET003's clock/entropy set —
#: none of these may flow into a scope that persists payloads
_IDENTITY_SOURCES = {
    "socket.gethostname", "socket.getfqdn",
    "platform.node", "platform.uname",
    "os.uname", "os.getlogin", "os.getpid", "os.getppid",
    "getpass.getuser",
}


class StorePayloadPurityRule(Rule):
    """STORE001: store payload writers must not read the environment.

    A scope (module body or single function, nested defs excluded) that
    calls a payload writer — ``atomic_write_json``/``atomic_write_text``
    or ``.put(...)`` on a store — must not also read a wall-clock,
    entropy or host/process-identity source: whatever those values feed,
    they make persisted bytes depend on when/where the writer ran, and
    a warm store read will no longer byte-match a cold recompute.  Take
    timestamps *outside* the writer scope (or keep them out of persisted
    payloads entirely, like the sweep's ``cache`` channel).
    """

    id = "STORE001"
    summary = ("store/artifact writer scope reads wall-clock, entropy or "
               "host identity; persisted payloads must be pure functions "
               "of their keys")

    _SOURCES = WallClockRule._SOURCES | _IDENTITY_SOURCES

    # -- scope handling -------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._scope(node.body)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._scope(node.body)
        self.generic_visit(node)  # nested defs form their own scopes

    visit_AsyncFunctionDef = visit_FunctionDef

    def _scope(self, body: List[ast.stmt]) -> None:
        writes = False
        sources: List[Tuple[ast.AST, str]] = []
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue  # separate scope
            if isinstance(node, ast.Call) and self._is_writer(node):
                writes = True
            qual = self._source_qual(node)
            if qual is not None:
                sources.append((node, qual))
                continue  # one report per attribute chain
            stack.extend(ast.iter_child_nodes(node))
        if writes:
            for node, qual in sources:
                self.report(
                    node,
                    f"{qual} read in a scope that persists payloads "
                    "(atomic_write_*/store.put); persisted bytes must be "
                    "pure functions of the key — hoist the environmental "
                    "read out, or keep it out of the payload",
                )

    # -- writers and sources --------------------------------------------
    @staticmethod
    def _is_writer(node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name) and func.id in _WRITER_NAMES:
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _WRITER_NAMES:
                return True
            if func.attr == "put":
                recv = func.value
                name = None
                if isinstance(recv, ast.Name):
                    name = recv.id
                elif isinstance(recv, ast.Attribute):
                    name = recv.attr
                if name is not None and "store" in name.lower():
                    return True
        return False

    def _source_qual(self, node: ast.AST):
        if isinstance(node, ast.Attribute):
            qual = self.ctx.qualname(node)
            if qual in self._SOURCES:
                return qual
        elif isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            qual = self.ctx.from_imports.get(node.id)
            if qual in self._SOURCES:
                return qual
        return None


class StoreKeyCompletenessRule(Rule):
    """STORE002: every value shaping a stored payload must key it.

    The store's correctness invariant is *payload bytes are a pure
    function of the key parts* (docs/store.md).  STORE001 polices the
    environmental half; STORE002 polices the dataflow half: at a
    ``<store>.put(key, payload)`` whose key is (transitively) built by
    ``stable_digest``/``stable_seed``/``<store>.key``, any enclosing-
    function parameter that influences the payload but never flows into
    the digested key parts means two calls differing only in that value
    collide on one address — the second caller is silently served the
    first caller's bytes.  Add the value to the key parts, or drop it
    from the payload.

    This is a whole-program check (key helpers live in other modules);
    the findings come precomputed from :mod:`repro.lint.summaries`, so
    the rule is inert outside a project run.
    """

    id = "STORE002"
    summary = ("a value influences a stored payload but does not flow "
               "into its stable_digest key — colliding addresses serve "
               "stale bytes")

    def run(self):
        if self.project is None:
            return []
        return [
            (line, col, message)
            for line, col, rule, message
            in self.project.findings_for(self.ctx.path)
            if rule == self.id
        ]
