"""IPD rules: the intramodule contracts, followed across calls.

Every syntactic rule in this package has a blind spot one call deep: a
``decide`` that delegates its coin flips to a helper, an algorithm that
hands its ``view`` to a function which pokes ``view._ball``, a worker
that passes an attached shm array into a routine that writes it.  The
two-phase analyzer (:mod:`repro.lint.summaries`) closes that gap —
phase 1 fixpoint-propagates per-function summary bits over the project
call graph, and these rules report the precomputed whole-program
findings under the ordinary per-file severity / suppression machinery.

A project rule therefore does no AST walking of its own: ``run()``
filters :meth:`ProjectIndex.findings_for` by rule id.  Outside a
project run (plain :func:`repro.lint.core.analyze_source` with no
``project=``), the rules are inert — interprocedural facts simply do
not exist for a single module in isolation.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core import Rule

__all__ = [
    "TransitiveEntropyRule",
    "TransitiveViewInternalsRule",
    "TransitiveSharedWriteRule",
]


class _ProjectRule(Rule):
    """Report phase-1 findings for this module, filtered by rule id."""

    def run(self) -> List[Tuple[int, int, str]]:
        if self.project is None:
            return []
        return [
            (line, col, message)
            for line, col, rule, message
            in self.project.findings_for(self.ctx.path)
            if rule == self.id
        ]


class TransitiveEntropyRule(_ProjectRule):
    """IPD001: an entry point transitively reaches unseeded randomness.

    Entry points are functions named ``decide``/``decide_batch`` and
    every resolved ``fork_map`` worker (``fn=``/``initializer=``).  The
    *local* case — the entry draws entropy itself — is DET001's finding;
    IPD001 fires exactly when the draw is hidden in a callee, at any
    depth, and reports the call chain that reaches it.  The fix is the
    same as DET001's: thread a seeded rng (derive the seed with
    ``repro.parallel.stable_seed``) through the chain.
    """

    id = "IPD001"
    summary = ("decide/decide_batch/fork_map worker transitively reaches "
               "unseeded randomness through its callees")


class TransitiveViewInternalsRule(_ProjectRule):
    """IPD002: a ``view`` escapes into a callee that reads ``_`` state.

    ENG001 flags ``view._x`` inside functions that take a view; IPD002
    follows the view parameter through calls — a function passing its
    ``view``/``views`` bare into a (transitively) internals-reading
    parameter gets flagged at the call site, with the read chain.  The
    engine contract (docs/engine-contract.md) makes private attributes
    unstable across engines; helpers do not get a pass for hiding the
    access one frame down.
    """

    id = "IPD002"
    summary = ("view escapes into a callee that (transitively) reads "
               "engine-private View._* state")


class TransitiveSharedWriteRule(_ProjectRule):
    """IPD003: an attached shm object escapes into a writing callee.

    SHM001 flags direct writes through names bound by
    ``shared_graph``/``attach_graph``/``from_csr_buffers``; IPD003
    follows those names into calls — passing an attached graph (or an
    ``adjacency()`` array of one) bare into a parameter the callee
    (transitively) writes is the same bug with a stack frame in the
    middle: sibling workers map those exact pages.
    """

    id = "IPD003"
    summary = ("attached shared-memory graph/array passed into a callee "
               "that (transitively) writes it")
