"""Per-function summaries, fixpoint propagation, interprocedural findings.

Phase 1 of the two-phase analyzer.  Each file is reduced (in a
``fork_map`` worker) to plain-data :class:`~repro.lint.callgraph.
ModuleFacts`: for every function unit, the *locally generated* summary
bits —

* **draws-entropy** — an unseeded ``random``/numpy-global draw
  (the DET001 pattern),
* **reads-wall-clock** — a DET003 clock/entropy source,
* **escapes-set-iteration-order** — a DET004 escape inside the body,
* **touches-view-internals** — a ``param._x`` read, per parameter,
* **writes-attached-buffers** — a ``param[...] =`` store, a write into
  ``param.adjacency()`` arrays, or a ``setflags(write=True)`` un-seal,
  per parameter,
* **flows-into-store-keys** — parameters reaching a
  ``stable_digest``/``<store>.key`` call (the key side of STORE002),

plus every resolvable call site.  Evidence generation honours inline
``# lint: allow(...)`` suppressions and ``severity == off`` config at
the generating site, so a *sanctioned* source (``benchmarks/
harness.py``'s clock) never taints its callers.

The parent process then links the call graph and propagates each bit to
a fixpoint.  Propagation is Jacobi-style — every round reads only the
previous round's state, in sorted function order — so the result is
deterministic regardless of dict order or worker count.  Ambient bits
(entropy, wall-clock, set-escape) flow through every resolved call
edge; per-parameter bits flow only where a caller passes one of its own
parameters *bare* to a callee parameter.

:func:`compute_findings` turns the fixpoint into the interprocedural
findings (IPD001–003, STORE002), each anchored to a single file so
phase 2 can report them under the ordinary per-file severity and
suppression machinery — byte-identical at any ``--jobs`` count.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (
    Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set,
    Tuple,
)

from .callgraph import (
    ATTACH_CALLS,
    CallGraph,
    CallSite,
    ClassFacts,
    Evidence,
    FunctionFacts,
    ModuleFacts,
    StorePut,
    build_import_map,
    dotted_chain,
    module_name_for_path,
)
from .core import ModuleContext, Suppressions

__all__ = [
    "extract_module_facts",
    "SummaryTable",
    "ProjectIndex",
    "build_project",
    "link_project",
    "IPD_RANDOM",
    "IPD_VIEW",
    "IPD_SHM",
    "STORE_KEY_FLOW",
]

IPD_RANDOM = "IPD001"
IPD_VIEW = "IPD002"
IPD_SHM = "IPD003"
STORE_KEY_FLOW = "STORE002"

#: base rule gating evidence generation: a site suppressed (or turned
#: off by severity config) for the base rule does not generate taint
_EVIDENCE_BASE_RULE = {
    "entropy": "DET001",
    "wall_clock": "DET003",
    "set_escape": "DET004",
    "private": "ENG001",
    "writes": "SHM001",
}

_DIGEST_NAMES = {"stable_digest", "stable_seed"}
_VIEW_PARAMS = {"view", "views"}
_ENTRY_NAMES = {"decide", "decide_batch"}


def _severity_for(path: str, rule_id: str, default: str) -> str:
    from .config import severity_for
    return severity_for(path, rule_id, default)


# ----------------------------------------------------------------------
# local dataflow helpers
# ----------------------------------------------------------------------
def _name_roots(node: ast.AST) -> Set[str]:
    """Every plain name appearing in ``node`` — the (coarse) set of
    local values the expression can depend on."""
    return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}


class _Influences:
    """name → transitively influencing names, within one unit body."""

    def __init__(self) -> None:
        self._direct: Dict[str, Set[str]] = {}
        self._closed: Optional[Dict[str, FrozenSet[str]]] = None

    def add(self, name: str, roots: Iterable[str]) -> None:
        self._direct.setdefault(name, set()).update(roots)
        self._closed = None

    def note_statement(self, node: ast.AST) -> None:
        """Record def-use facts from one assignment-like statement."""
        if isinstance(node, ast.Assign):
            roots = _name_roots(node.value)
            for target in node.targets:
                self._note_target(target, roots)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._note_target(node.target, _name_roots(node.value))
        elif isinstance(node, ast.AugAssign):
            self._note_target(node.target, _name_roots(node.value))
        elif isinstance(node, ast.For):
            self._note_target(node.target, _name_roots(node.iter))
        elif isinstance(node, ast.withitem) and node.optional_vars:
            self._note_target(node.optional_vars,
                              _name_roots(node.context_expr))
        elif isinstance(node, ast.NamedExpr):
            self._note_target(node.target, _name_roots(node.value))

    def _note_target(self, target: ast.AST, roots: Set[str]) -> None:
        if isinstance(target, ast.Name):
            self.add(target.id, roots)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._note_target(elt, roots)
        elif isinstance(target, ast.Starred):
            self._note_target(target.value, roots)
        elif isinstance(target, (ast.Subscript, ast.Attribute)):
            # d[k] = v / o.attr = v: the container absorbs the roots
            base = target.value
            while isinstance(base, (ast.Subscript, ast.Attribute)):
                base = base.value
            if isinstance(base, ast.Name):
                self.add(base.id, roots | _name_roots(target))

    def _close(self) -> Dict[str, FrozenSet[str]]:
        if self._closed is None:
            closed: Dict[str, Set[str]] = {
                k: set(v) for k, v in self._direct.items()
            }
            changed = True
            guard = 0
            while changed and guard <= len(closed) + 1:
                changed = False
                guard += 1
                for name in closed:
                    extra: Set[str] = set()
                    for dep in closed[name]:
                        extra |= closed.get(dep, set())
                    if not extra <= closed[name]:
                        closed[name] |= extra
                        changed = True
            self._closed = {k: frozenset(v) for k, v in closed.items()}
        return self._closed

    def expand(self, roots: Iterable[str]) -> FrozenSet[str]:
        """``roots`` plus everything that influences them."""
        closed = self._close()
        out: Set[str] = set()
        for r in roots:
            out.add(r)
            out |= closed.get(r, frozenset())
        return frozenset(out)


# ----------------------------------------------------------------------
# per-file extraction
# ----------------------------------------------------------------------
def _iter_unit_nodes(body: Sequence[ast.stmt]):
    """Walk a unit body in source order without entering nested
    ``def``/``class`` statements (they are their own units)."""
    stack: List[ast.AST] = list(reversed(list(body)))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue
        yield node
        stack.extend(reversed(list(ast.iter_child_nodes(node))))


def _lambda_params(node: ast.Lambda) -> Tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs))


def _def_params(node: ast.AST) -> Tuple[str, ...]:
    args = node.args
    return tuple(a.arg for a in (args.posonlyargs + args.args
                                 + args.kwonlyargs))


class _Extractor:
    """Single-file fact extraction (runs inside phase-1 workers)."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.module = module_name_for_path(path)
        self.tree = tree
        self.imports = build_import_map(
            tree, self.module, path.endswith("__init__.py"))
        self.suppressions = Suppressions(source)
        self.facts = ModuleFacts(path=path, module=self.module)
        #: module-level def/class names → qualname
        self.module_defs: Dict[str, str] = {}
        self._source = source

    # -- gating ---------------------------------------------------------
    def _evidence(self, kind: str, line: int, detail: str,
                  ) -> Optional[Evidence]:
        base = _EVIDENCE_BASE_RULE[kind]
        if self.suppressions.suppresses(line, base):
            return None
        if _severity_for(self.path, base, "error") == "off":
            return None
        return Evidence(self.path, line, detail)

    # -- symbolic call targets ------------------------------------------
    def _qual_of(self, node: ast.AST) -> Optional[str]:
        chain = dotted_chain(node)
        if chain is None:
            return None
        base, parts = chain
        root = self.imports.get(base)
        if root is None:
            return None
        return ".".join((root,) + parts)

    def _call_target(self, func: ast.AST,
                     scope: Dict[str, str],
                     class_qual: Optional[str]) -> Tuple[str, str]:
        if isinstance(func, ast.Name):
            name = func.id
            if name in scope:
                return ("qual", scope[name])
            if name in self.module_defs:
                return ("qual", self.module_defs[name])
            if name in self.imports:
                return ("qual", self.imports[name])
            return ("bare", name)
        chain = dotted_chain(func)
        if chain is None:
            return ("bare", "")
        base, parts = chain
        if base == "self" and class_qual is not None and len(parts) == 1:
            return ("self", parts[0])
        if base in self.imports:
            return ("qual", ".".join((self.imports[base],) + parts))
        if base in self.module_defs:
            return ("qual", ".".join((self.module_defs[base],) + parts))
        return ("bare", ".".join((base,) + parts))

    # -- digest / writer detection --------------------------------------
    def _is_digest_call(self, node: ast.Call) -> bool:
        func = node.func
        if isinstance(func, ast.Name):
            if func.id in _DIGEST_NAMES:
                return True
            target = self.imports.get(func.id, "")
            return target.rsplit(".", 1)[-1] in _DIGEST_NAMES
        if isinstance(func, ast.Attribute):
            qual = self._qual_of(func)
            if qual is not None and qual.rsplit(".", 1)[-1] in _DIGEST_NAMES:
                return True
            if func.attr == "key":
                return any("store" in part.lower()
                           for part in _receiver_parts(func.value))
        return False

    @staticmethod
    def _is_store_put(node: ast.Call) -> bool:
        func = node.func
        return (isinstance(func, ast.Attribute) and func.attr == "put"
                and len(node.args) >= 2
                and any("store" in part.lower()
                        for part in _receiver_parts(func.value)))

    # -- unit extraction -------------------------------------------------
    def run(self) -> ModuleFacts:
        # first pass: module-level defs/classes (call resolution targets)
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.module_defs[stmt.name] = f"{self.module}.{stmt.name}"
        exports = dict(self.imports)
        exports.update(self.module_defs)
        self.facts.exports = exports
        # units: module body, defs (recursively), named lambdas
        module_unit = self._new_unit(
            f"{self.module}.<module>", "<module>", 1, 0,
            getattr(self.tree, "end_lineno", None) or 1, (), None)
        self._extract_unit(module_unit, self.tree.body, {}, None)
        self._collect_defs(self.tree.body, self.module, None, {})
        self._assign_set_escapes()
        return self.facts

    def _new_unit(self, qualname: str, name: str, line: int, col: int,
                  end_line: int, params: Tuple[str, ...],
                  class_qual: Optional[str]) -> FunctionFacts:
        unit = FunctionFacts(
            qualname=qualname, name=name, path=self.path,
            module=self.module, line=line, col=col, end_line=end_line,
            params=params, class_qual=class_qual)
        self.facts.functions.append(unit)
        return unit

    def _collect_defs(self, body: Sequence[ast.stmt], prefix: str,
                      class_qual: Optional[str],
                      outer_scope: Dict[str, str]) -> None:
        """Register every def/class/named-lambda under ``prefix`` and
        extract each function unit's facts."""
        # names visible to siblings (nested defs see each other)
        scope = dict(outer_scope)
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scope[stmt.name] = f"{prefix}.{stmt.name}"
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}.{stmt.name}"
                unit = self._new_unit(
                    qual, stmt.name, stmt.lineno, stmt.col_offset,
                    getattr(stmt, "end_lineno", None) or stmt.lineno,
                    _def_params(stmt), class_qual)
                self._extract_unit(unit, stmt.body, scope, class_qual)
                self._collect_defs(stmt.body, qual, None, scope)
            elif isinstance(stmt, ast.ClassDef):
                cls_qual = f"{prefix}.{stmt.name}"
                bases = []
                for b in stmt.bases:
                    target = self._call_target(b, scope, None)
                    if target[0] == "qual":
                        bases.append(target[1])
                self.facts.classes[cls_qual] = ClassFacts(
                    qualname=cls_qual, name=stmt.name, bases=tuple(bases))
                self._collect_defs(stmt.body, cls_qual, cls_qual, scope)
            elif isinstance(stmt, ast.Assign) and isinstance(
                    stmt.value, ast.Lambda):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        qual = f"{prefix}.{target.id}"
                        unit = self._new_unit(
                            qual, target.id, stmt.lineno, stmt.col_offset,
                            getattr(stmt, "end_lineno", None) or stmt.lineno,
                            _lambda_params(stmt.value), class_qual)
                        self._extract_unit(
                            unit, [ast.Expr(value=stmt.value.body)],
                            scope, class_qual)
                        break

    def _extract_unit(self, unit: FunctionFacts, body: Sequence[ast.stmt],
                      scope: Dict[str, str],
                      class_qual: Optional[str]) -> None:
        influences = _Influences()
        params = set(unit.params)
        adjacency_of: Dict[str, str] = {}  # derived array name → param
        calls: List[ast.Call] = []
        for node in _iter_unit_nodes(body):
            influences.note_statement(node)
            if isinstance(node, ast.Call):
                calls.append(node)
                self._note_entropy(unit, node)
                self._note_setflags_write(unit, node, params)
            elif isinstance(node, ast.Attribute):
                self._note_wall_clock(unit, node)
                self._note_private_read(unit, node, params)
            elif isinstance(node, ast.Name):
                self._note_wall_clock_name(unit, node)
            if isinstance(node, ast.Assign):
                self._note_tracking(unit, node, params, adjacency_of)
                for target in node.targets:
                    self._note_subscript_write(
                        unit, target, params, adjacency_of)
                    self._note_writeable_unseal(
                        unit, node, target, params)
            elif isinstance(node, ast.AugAssign):
                self._note_subscript_write(
                    unit, node.target, params, adjacency_of)
        # second pass over calls now that tracking/influences are complete
        digest_params: Set[str] = set()
        for node in calls:
            target = self._call_target(node.func, scope, class_qual)
            site = self._call_site(node, target, influences)
            unit.calls.append(site)
            if self._is_digest_call(node):
                unit.has_digest = True
                roots: Set[str] = set()
                for arg in node.args:
                    if not isinstance(arg, ast.Starred):
                        roots |= _name_roots(arg)
                for kw in node.keywords:
                    roots |= _name_roots(kw.value)
                digest_params |= set(influences.expand(roots)) & set(
                    unit.params)
            if self._is_fork_map(target):
                self._note_fork_workers(unit, node, scope, class_qual)
            if self._is_store_put(node):
                self._note_store_put(unit, node, scope, class_qual,
                                     influences)
        unit.digest_params = tuple(sorted(digest_params))
        unit.calls.sort(key=lambda s: (s.line, s.col))

    # -- individual fact recorders --------------------------------------
    def _note_entropy(self, unit: FunctionFacts, node: ast.Call) -> None:
        if unit.entropy is not None:
            return
        qual = self._qual_of(node.func)
        detail = None
        if qual == "random.Random" and not node.args and not node.keywords:
            detail = "unseeded random.Random()"
        elif qual is not None and qual.startswith("random."):
            from .rules.determinism import UnseededRandomRule
            attr = qual.split(".", 1)[1]
            if attr in UnseededRandomRule._GLOBAL_DRAWS:
                detail = f"random.{attr}()"
        elif qual is not None and (qual.startswith("numpy.random.")
                                   or qual.startswith("np.random.")):
            detail = f"{qual}()"
        if detail is not None:
            ev = self._evidence("entropy", node.lineno, detail)
            if ev is not None:
                unit.entropy = ev

    def _note_wall_clock(self, unit: FunctionFacts,
                         node: ast.Attribute) -> None:
        if unit.wall_clock is not None:
            return
        from .rules.determinism import WallClockRule
        qual = self._qual_of(node)
        if qual in WallClockRule._SOURCES:
            ev = self._evidence("wall_clock", node.lineno, qual)
            if ev is not None:
                unit.wall_clock = ev

    def _note_wall_clock_name(self, unit: FunctionFacts,
                              node: ast.Name) -> None:
        if unit.wall_clock is not None or not isinstance(
                node.ctx, ast.Load):
            return
        from .rules.determinism import WallClockRule
        qual = self.imports.get(node.id)
        if qual in WallClockRule._SOURCES:
            ev = self._evidence("wall_clock", node.lineno, qual)
            if ev is not None:
                unit.wall_clock = ev

    def _note_private_read(self, unit: FunctionFacts, node: ast.Attribute,
                           params: Set[str]) -> None:
        base = node.value
        if (isinstance(base, ast.Name) and base.id in params
                and base.id != "self"
                and node.attr.startswith("_")
                and not node.attr.startswith("__")):
            if base.id not in unit.private_reads:
                ev = self._evidence(
                    "private", node.lineno, f"{base.id}.{node.attr}")
                if ev is not None:
                    unit.private_reads[base.id] = ev

    def _note_setflags_write(self, unit: FunctionFacts, node: ast.Call,
                             params: Set[str]) -> None:
        func = node.func
        if not (isinstance(func, ast.Attribute)
                and func.attr == "setflags"):
            return
        root = func.value
        while isinstance(root, (ast.Attribute, ast.Subscript)):
            root = root.value
        if not (isinstance(root, ast.Name) and root.id in params):
            return
        for kw in node.keywords:
            if kw.arg == "write" and not (
                    isinstance(kw.value, ast.Constant)
                    and kw.value.value is False):
                if root.id not in unit.buffer_writes:
                    ev = self._evidence(
                        "writes", node.lineno,
                        f"{root.id}.setflags(write=True)")
                    if ev is not None:
                        unit.buffer_writes[root.id] = ev

    def _note_writeable_unseal(self, unit: FunctionFacts, node: ast.Assign,
                               target: ast.AST, params: Set[str]) -> None:
        if not (isinstance(target, ast.Attribute)
                and target.attr == "writeable"
                and isinstance(target.value, ast.Attribute)
                and target.value.attr == "flags"):
            return
        if (isinstance(node.value, ast.Constant)
                and node.value.value is False):
            return
        root = target.value.value
        if isinstance(root, ast.Name) and root.id in params:
            if root.id not in unit.buffer_writes:
                ev = self._evidence(
                    "writes", target.lineno,
                    f"{root.id}.flags.writeable = True")
                if ev is not None:
                    unit.buffer_writes[root.id] = ev

    def _note_subscript_write(self, unit: FunctionFacts, target: ast.AST,
                              params: Set[str],
                              adjacency_of: Dict[str, str]) -> None:
        if not (isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)):
            return
        name = target.value.id
        owner = None
        if name in params and name != "self":
            owner, detail = name, f"{name}[...] = ..."
        elif name in adjacency_of:
            owner = adjacency_of[name]
            detail = f"{name}[...] = ... ({owner}.adjacency() array)"
        if owner is not None and owner not in unit.buffer_writes:
            ev = self._evidence("writes", target.lineno, detail)
            if ev is not None:
                unit.buffer_writes[owner] = ev

    def _note_tracking(self, unit: FunctionFacts, node: ast.Assign,
                       params: Set[str],
                       adjacency_of: Dict[str, str]) -> None:
        """Track attached graphs/arrays (caller side of IPD003) and
        adjacency arrays derived from parameters (callee side)."""
        value = node.value
        if isinstance(value, ast.Call):
            func = value.func
            fname = func.id if isinstance(func, ast.Name) else (
                func.attr if isinstance(func, ast.Attribute) else None)
            if fname in ATTACH_CALLS:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        unit.attached.setdefault(target.id, node.lineno)
                return
            if (isinstance(func, ast.Attribute)
                    and func.attr == "adjacency"
                    and isinstance(func.value, ast.Name)):
                base = func.value.id
                names: List[str] = []
                for target in node.targets:
                    elts = (target.elts if isinstance(
                        target, (ast.Tuple, ast.List)) else [target])
                    names.extend(t.id for t in elts
                                 if isinstance(t, ast.Name))
                if base in unit.attached:
                    for n in names:
                        unit.attached.setdefault(n, node.lineno)
                if base in params and base != "self":
                    for n in names:
                        adjacency_of.setdefault(n, base)

    @staticmethod
    def _is_fork_map(target: Tuple[str, str]) -> bool:
        ref = target[1]
        return ref == "fork_map" or ref.endswith(".fork_map")

    def _note_fork_workers(self, unit: FunctionFacts, node: ast.Call,
                           scope: Dict[str, str],
                           class_qual: Optional[str]) -> None:
        candidates: List[ast.AST] = []
        if node.args:
            candidates.append(node.args[0])
        for kw in node.keywords:
            if kw.arg in ("fn", "initializer"):
                candidates.append(kw.value)
        for cand in candidates:
            if isinstance(cand, (ast.Name, ast.Attribute)):
                target = self._call_target(cand, scope, class_qual)
                if target[0] != "bare":
                    unit.fork_workers.append((target, node.lineno))

    def _call_site(self, node: ast.Call, target: Tuple[str, str],
                   influences: _Influences) -> CallSite:
        pos_bare: List[Tuple[int, str]] = []
        pos_roots: List[Tuple[int, FrozenSet[str]]] = []
        for i, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            if isinstance(arg, ast.Name):
                pos_bare.append((i, arg.id))
            pos_roots.append((i, influences.expand(_name_roots(arg))))
        kw_bare: List[Tuple[str, str]] = []
        kw_roots: List[Tuple[str, FrozenSet[str]]] = []
        for kw in node.keywords:
            if kw.arg is None:
                continue
            if isinstance(kw.value, ast.Name):
                kw_bare.append((kw.arg, kw.value.id))
            kw_roots.append(
                (kw.arg, influences.expand(_name_roots(kw.value))))
        return CallSite(
            line=node.lineno, col=node.col_offset, target=target,
            pos_bare=tuple(pos_bare), kw_bare=tuple(kw_bare),
            pos_roots=tuple(pos_roots), kw_roots=tuple(kw_roots))

    def _note_store_put(self, unit: FunctionFacts, node: ast.Call,
                        scope: Dict[str, str], class_qual: Optional[str],
                        influences: _Influences) -> None:
        key_expr, payload = node.args[0], node.args[1]
        key_calls: List[CallSite] = []
        direct_roots: Set[str] = set()
        saw_digest = False

        def consume(expr: ast.AST, depth: int = 0) -> None:
            nonlocal saw_digest
            if depth > 4:
                return
            if isinstance(expr, ast.Call):
                arg_roots: Set[str] = set()
                for a in expr.args:
                    if not isinstance(a, ast.Starred):
                        arg_roots |= _name_roots(a)
                for kw in expr.keywords:
                    arg_roots |= _name_roots(kw.value)
                if self._is_digest_call(expr):
                    saw_digest = True
                    direct_roots.update(influences.expand(arg_roots))
                    return
                target = self._call_target(expr.func, scope, class_qual)
                if target[0] == "bare":
                    # unresolvable helper: optimistic — assume complete
                    saw_digest = True
                    direct_roots.update(influences.expand(arg_roots))
                    return
                key_calls.append(
                    self._call_site(expr, target, influences))
            elif isinstance(expr, ast.Name):
                # chase local provenance one level: every call assigned
                # to this name contributes
                for producer in self._producers_of(expr.id):
                    consume(producer, depth + 1)
            # other forms (tuples, constants) carry no checkable flow

        consume(key_expr)
        unit.store_puts.append(StorePut(
            line=node.lineno, col=node.col_offset,
            payload_roots=influences.expand(_name_roots(payload)),
            receiver_roots=influences.expand(_name_roots(node.func.value)),
            key_calls=tuple(key_calls),
            direct_roots=frozenset(direct_roots),
            saw_digest=saw_digest,
        ))

    def _producers_of(self, name: str) -> List[ast.Call]:
        """Call expressions assigned to ``name`` anywhere in the module
        (coarse: cross-unit assignments are rare for store keys)."""
        out: List[ast.Call] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Assign) and isinstance(
                    node.value, ast.Call):
                for target in node.targets:
                    if isinstance(target, ast.Name) and target.id == name:
                        out.append(node.value)
        return out

    # -- set-escape assignment ------------------------------------------
    def _assign_set_escapes(self) -> None:
        """Run the DET004 pattern over the module and attribute each
        finding to the innermost enclosing unit."""
        from .rules.determinism import SetIterationRule
        ctx = ModuleContext(self.path, self._source, self.tree)
        findings = SetIterationRule(ctx).run()
        if not findings:
            return
        units = sorted(self.facts.functions,
                       key=lambda u: (u.end_line - u.line))
        for line, _col, _message in sorted(findings):
            ev = self._evidence(
                "set_escape", line, "set iteration order escape")
            if ev is None:
                continue
            for unit in units:
                if unit.name != "<module>" and \
                        unit.line <= line <= unit.end_line:
                    if unit.set_escape is None:
                        unit.set_escape = ev
                    break
            else:
                module_unit = self.facts.functions[0]
                if module_unit.set_escape is None:
                    module_unit.set_escape = ev


def _receiver_parts(node: ast.AST) -> Tuple[str, ...]:
    chain = dotted_chain(node)
    if chain is None:
        return ()
    base, parts = chain
    return (base,) + parts


def extract_module_facts(path: str, source: str) -> ModuleFacts:
    """Phase-1 worker: all facts for one file (empty on syntax errors —
    phase 2 reports those as LINT001)."""
    try:
        tree = ast.parse(source)
    except SyntaxError:
        return ModuleFacts(path=path, module=module_name_for_path(path))
    return _Extractor(path, source, tree).run()


# ----------------------------------------------------------------------
# fixpoint propagation
# ----------------------------------------------------------------------
#: state value: ("local", Evidence) or ("via", key-into-the-same-table)
_State = Tuple[str, object]


@dataclass
class SummaryTable:
    """The linked, fixpointed summary table for a whole project."""

    graph: CallGraph
    #: ambient bits: bit name → qualname → state
    ambient: Dict[str, Dict[str, _State]] = field(default_factory=dict)
    #: per-param bits: bit name → (qualname, param) → state
    per_param: Dict[str, Dict[Tuple[str, str], _State]] = field(
        default_factory=dict)
    key_params: Dict[str, FrozenSet[str]] = field(default_factory=dict)
    has_digest: Set[str] = field(default_factory=set)
    #: entry points: qualname → kind label
    entries: Dict[str, str] = field(default_factory=dict)

    # -- introspection (tests, --dump-summaries) ------------------------
    def bit(self, bit: str, qualname: str) -> bool:
        return qualname in self.ambient.get(bit, {})

    def param_bit(self, bit: str, qualname: str, param: str) -> bool:
        return (qualname, param) in self.per_param.get(bit, {})

    def chain(self, bit: str, qualname: str) -> List[str]:
        """Human-readable taint chain for an ambient bit."""
        table = self.ambient.get(bit, {})
        out: List[str] = []
        key = qualname
        for _ in range(64):
            state = table.get(key)
            if state is None:
                break
            kind, payload = state
            if kind == "local":
                ev = payload
                out.append(f"{ev.detail} ({ev.path}:{ev.line})")
                break
            key = payload
            fn = self.graph.functions.get(key)
            where = f" ({fn.path}:{fn.line})" if fn is not None else ""
            out.append(f"{fn.name if fn else key}{where}")
        return out

    def param_chain(self, bit: str, qualname: str, param: str) -> List[str]:
        table = self.per_param.get(bit, {})
        out: List[str] = []
        key = (qualname, param)
        for _ in range(64):
            state = table.get(key)
            if state is None:
                break
            kind, payload = state
            if kind == "local":
                ev = payload
                out.append(f"{ev.detail} ({ev.path}:{ev.line})")
                break
            key = payload
            fn = self.graph.functions.get(key[0])
            where = f" ({fn.path}:{fn.line})" if fn is not None else ""
            out.append(f"{fn.name if fn else key[0]}{where}")
        return out


def _fix_ambient(graph: CallGraph, attr: str) -> Dict[str, _State]:
    quals = sorted(graph.functions)
    state: Dict[str, _State] = {}
    for qual in quals:
        ev = getattr(graph.functions[qual], attr)
        if ev is not None:
            state[qual] = ("local", ev)
    while True:
        prev = dict(state)
        for qual in quals:
            if qual in state:
                continue
            fn = graph.functions[qual]
            for site in fn.calls:
                resolved = graph.resolve_call(fn, site)
                if resolved is not None and resolved[0] in prev \
                        and resolved[0] != qual:
                    state[qual] = ("via", resolved[0])
                    break
        if len(state) == len(prev):
            return state


def _fix_per_param(graph: CallGraph, attr: str,
                   ) -> Dict[Tuple[str, str], _State]:
    quals = sorted(graph.functions)
    state: Dict[Tuple[str, str], _State] = {}
    for qual in quals:
        for param, ev in sorted(getattr(graph.functions[qual],
                                        attr).items()):
            state[(qual, param)] = ("local", ev)
    while True:
        prev = dict(state)
        for qual in quals:
            fn = graph.functions[qual]
            own = set(fn.params)
            for site in fn.calls:
                resolved = graph.resolve_call(fn, site)
                if resolved is None:
                    continue
                callee, offset = resolved
                for slot, name in list(site.pos_bare) + list(site.kw_bare):
                    if name not in own or (qual, name) in state:
                        continue
                    bound = graph.param_for_slot(callee, offset, slot)
                    if bound is not None and (callee, bound) in prev:
                        state[(qual, name)] = ("via", (callee, bound))
        if len(state) == len(prev):
            return state


def _fix_key_params(graph: CallGraph) -> Tuple[Dict[str, FrozenSet[str]],
                                               Set[str]]:
    quals = sorted(graph.functions)
    key_params: Dict[str, Set[str]] = {}
    has_digest: Set[str] = set()
    for qual in quals:
        fn = graph.functions[qual]
        if fn.has_digest:
            has_digest.add(qual)
            key_params[qual] = set(fn.digest_params)
    while True:
        before = (len(has_digest),
                  sum(len(v) for v in key_params.values()))
        for qual in quals:
            fn = graph.functions[qual]
            own = set(fn.params)
            for site in fn.calls:
                resolved = graph.resolve_call(fn, site)
                if resolved is None:
                    continue
                callee, offset = resolved
                if callee not in has_digest or callee == qual:
                    continue
                callee_keys = key_params.get(callee, set())
                flowing: Set[str] = set()
                for slot, roots in list(site.pos_roots) + list(
                        site.kw_roots):
                    bound = graph.param_for_slot(callee, offset, slot)
                    if bound is not None and bound in callee_keys:
                        flowing |= set(roots) & own
                if flowing:
                    has_digest.add(qual)
                    key_params.setdefault(qual, set()).update(flowing)
        after = (len(has_digest),
                 sum(len(v) for v in key_params.values()))
        if after == before:
            return ({q: frozenset(v) for q, v in key_params.items()},
                    has_digest)


def build_table(graph: CallGraph) -> SummaryTable:
    table = SummaryTable(graph=graph)
    table.ambient["entropy"] = _fix_ambient(graph, "entropy")
    table.ambient["wall_clock"] = _fix_ambient(graph, "wall_clock")
    table.ambient["set_escape"] = _fix_ambient(graph, "set_escape")
    table.per_param["private"] = _fix_per_param(graph, "private_reads")
    table.per_param["writes"] = _fix_per_param(graph, "buffer_writes")
    table.key_params, table.has_digest = _fix_key_params(graph)
    # entry points: decide/decide_batch by name, fork_map workers by ref
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if fn.name in _ENTRY_NAMES:
            table.entries[qual] = f"{fn.name}()"
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        for target, _line in fn.fork_workers:
            worker = graph.resolve_worker(fn, target)
            if worker is not None:
                table.entries.setdefault(worker, "fork_map worker")
    return table


# ----------------------------------------------------------------------
# interprocedural findings
# ----------------------------------------------------------------------
RawFinding = Tuple[int, int, str, str]


def _render_chain(parts: List[str]) -> str:
    return " → ".join(parts)


def compute_findings(table: SummaryTable) -> Dict[str, List[RawFinding]]:
    graph = table.graph
    out: Dict[str, List[RawFinding]] = {}

    def add(path: str, finding: RawFinding) -> None:
        out.setdefault(path, []).append(finding)

    # IPD001: transitive unseeded randomness from decide/fork_map entries
    entropy = table.ambient["entropy"]
    for qual in sorted(table.entries):
        state = entropy.get(qual)
        if state is None or state[0] == "local":
            continue  # local draws are DET001's finding, not IPD001's
        fn = graph.functions[qual]
        chain = _render_chain(table.chain("entropy", qual))
        add(fn.path, (
            fn.line, fn.col, IPD_RANDOM,
            f"{table.entries[qual]} {fn.name!r} reaches unseeded "
            f"randomness through its callees: {chain}; thread a seeded "
            "rng (derive it via repro.parallel.stable_seed) through the "
            "call chain"))

    # IPD002: view escaping into internals-touching callees
    private = table.per_param["private"]
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        sealed = set(fn.params) & _VIEW_PARAMS
        if not sealed:
            continue
        for site in fn.calls:
            resolved = graph.resolve_call(fn, site)
            if resolved is None:
                continue
            callee, offset = resolved
            for slot, name in list(site.pos_bare) + list(site.kw_bare):
                if name not in sealed:
                    continue
                bound = graph.param_for_slot(callee, offset, slot)
                if bound is None or (callee, bound) not in private:
                    continue
                cfn = graph.functions[callee]
                chain = _render_chain(
                    table.param_chain("private", callee, bound))
                add(fn.path, (
                    site.line, site.col, IPD_VIEW,
                    f"{name} escapes into {cfn.name}(), which reads "
                    f"engine-private state: {chain}; algorithms must "
                    "stay inside the public View API"))

    # IPD003: attached shared-memory graphs/arrays escaping into writers
    writes = table.per_param["writes"]
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        if not fn.attached:
            continue
        for site in fn.calls:
            resolved = graph.resolve_call(fn, site)
            if resolved is None:
                continue
            callee, offset = resolved
            for slot, name in list(site.pos_bare) + list(site.kw_bare):
                if name not in fn.attached:
                    continue
                bound = graph.param_for_slot(callee, offset, slot)
                if bound is None or (callee, bound) not in writes:
                    continue
                cfn = graph.functions[callee]
                chain = _render_chain(
                    table.param_chain("writes", callee, bound))
                add(fn.path, (
                    site.line, site.col, IPD_SHM,
                    f"attached shared-memory object {name!r} passed "
                    f"into {cfn.name}(), which writes it: {chain}; "
                    "attached segments are mapped by sibling workers — "
                    "copy before mutating"))

    # STORE002: payload values missing from the stable_digest key
    for qual in sorted(graph.functions):
        fn = graph.functions[qual]
        for put in fn.store_puts:
            finding = _check_store_put(table, fn, put)
            if finding is not None:
                add(fn.path, finding)

    for path in out:
        out[path].sort()
    return out


def _check_store_put(table: SummaryTable, fn: FunctionFacts,
                     put: StorePut) -> Optional[RawFinding]:
    graph = table.graph
    key_roots: Set[str] = set(put.direct_roots)
    digest_backed = put.saw_digest
    for site in put.key_calls:
        resolved = graph.resolve_call(fn, site)
        all_roots: Set[str] = set()
        for _slot, roots in list(site.pos_roots) + list(site.kw_roots):
            all_roots |= set(roots)
        if resolved is None:
            # helper outside the project: assume it digests everything
            key_roots |= all_roots
            digest_backed = True
            continue
        callee, offset = resolved
        if callee not in table.has_digest:
            # resolved helper with no digest flow anywhere: not a
            # content-addressed key — nothing to check through it
            key_roots |= all_roots
            continue
        digest_backed = True
        callee_keys = table.key_params.get(callee, frozenset())
        for slot, roots in list(site.pos_roots) + list(site.kw_roots):
            bound = graph.param_for_slot(callee, offset, slot)
            if bound is None or bound in callee_keys:
                key_roots |= set(roots)
    if not digest_backed:
        return None
    missing = sorted(
        p for p in fn.params
        if p in put.payload_roots
        and p not in key_roots
        and p not in put.receiver_roots
        and p not in ("self", "cls")
        and "store" not in p.lower())
    if not missing:
        return None
    noun = "parameter" if len(missing) == 1 else "parameters"
    names = ", ".join(repr(m) for m in missing)
    return (
        put.line, put.col, STORE_KEY_FLOW,
        f"{noun} {names} influence(s) the stored payload but do(es) not "
        "flow into its stable_digest key; a warm read would serve bytes "
        "that ignore it — add it to the key parts or drop it from the "
        "payload")


# ----------------------------------------------------------------------
# the shipped project index
# ----------------------------------------------------------------------
class ProjectIndex:
    """What phase 2 needs: interprocedural findings keyed by file.

    The parent builds it once (extract → link → fixpoint → findings)
    and ships it to every check worker through the ``fork_map``
    initializer; workers only ever *read* it, so reports stay
    byte-identical at any ``--jobs`` count.  ``table`` (the fixpointed
    summaries) rides along for introspection and tests.
    """

    def __init__(self, table: SummaryTable,
                 findings: Dict[str, List[RawFinding]]) -> None:
        self.table = table
        self._findings = findings

    def findings_for(self, path: str) -> Sequence[RawFinding]:
        return self._findings.get(path, ())


def link_project(modules: Sequence[ModuleFacts]) -> ProjectIndex:
    """Link per-file facts into the fixpointed project index."""
    graph = CallGraph(modules)
    table = build_table(graph)
    return ProjectIndex(table, compute_findings(table))


def build_project(sources: Mapping[str, str]) -> ProjectIndex:
    """Extract + link an in-memory ``{path: source}`` project — the
    test-facing entry point mirroring what the runner does on disk."""
    facts = [extract_module_facts(path, sources[path])
             for path in sorted(sources)]
    return link_project(facts)
